package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"

	"ntcsim/internal/cache"
	"ntcsim/internal/cpu"
	"ntcsim/internal/dram"
	"ntcsim/internal/uncore"
	"ntcsim/internal/workload"
)

// Checkpoint is the complete serializable state of a warmed cluster — the
// paper's methodology launches measurements "from checkpoints with warmed
// caches and branch predictors" (Sec. IV), and warming dominates simulation
// cost, so a saved checkpoint amortizes it across experiments.
//
// A checkpoint records the construction parameters (configuration, workload
// names, frequency) plus every component's dynamic state; RestoreCluster
// rebuilds the cluster deterministically and loads the state.
type Checkpoint struct {
	Config   Config
	Profiles []string // workload names, one per core
	FreqHz   float64

	Cores   []cpu.CoreState
	Banks   [][][]cache.LineState
	BankSts []cache.Stats
	Xbar    uncore.CrossbarState
	Memory  dram.SystemState
	ClampNs float64

	LLCWriteFills uint64
	LLCReads      uint64
	LLCWrites     uint64
	DramReads     uint64
	DramWrites    uint64
}

// Checkpoint captures the cluster's full state.
func (cl *Cluster) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Config:        cl.cfg,
		FreqHz:        cl.freqHz,
		Xbar:          cl.xbar.State(),
		Memory:        cl.mem.sys.State(),
		ClampNs:       cl.mem.clampNs,
		LLCWriteFills: cl.llcWriteFills,
		LLCReads:      cl.llcReads,
		LLCWrites:     cl.llcWrites,
		DramReads:     cl.dramReads,
		DramWrites:    cl.dramWrites,
	}
	for _, p := range cl.profiles {
		ck.Profiles = append(ck.Profiles, p.Name)
	}
	for _, c := range cl.cores {
		ck.Cores = append(ck.Cores, c.State())
	}
	for _, b := range cl.banks {
		ck.Banks = append(ck.Banks, b.Snapshot())
		ck.BankSts = append(ck.BankSts, b.Stats())
	}
	return ck
}

// RestoreCluster rebuilds a cluster from a checkpoint.
func RestoreCluster(ck *Checkpoint) (*Cluster, error) {
	profiles := make([]*workload.Profile, len(ck.Profiles))
	for i, name := range ck.Profiles {
		p := workload.ByName(name)
		if p == nil {
			return nil, fmt.Errorf("sim: checkpoint references unknown workload %q", name)
		}
		profiles[i] = p
	}
	cl, err := NewMixedCluster(ck.Config, profiles, ck.FreqHz)
	if err != nil {
		return nil, err
	}
	if len(ck.Cores) != len(cl.cores) || len(ck.Banks) != len(cl.banks) {
		return nil, fmt.Errorf("sim: checkpoint shape mismatch")
	}
	for i, st := range ck.Cores {
		if err := cl.cores[i].Restore(st); err != nil {
			return nil, fmt.Errorf("sim: core %d: %w", i, err)
		}
	}
	for i, snap := range ck.Banks {
		if err := cl.banks[i].RestoreSnapshot(snap); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cl.banks[i].SetStats(ck.BankSts[i])
	}
	if err := cl.xbar.Restore(ck.Xbar); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cl.mem.sys.Restore(ck.Memory); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	cl.mem.clampNs = ck.ClampNs
	cl.llcWriteFills = ck.LLCWriteFills
	cl.llcReads = ck.LLCReads
	cl.llcWrites = ck.LLCWrites
	cl.dramReads = ck.DramReads
	cl.dramWrites = ck.DramWrites
	return cl, nil
}

// Save writes the checkpoint with encoding/gob.
func (ck *Checkpoint) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	return &ck, nil
}

// Sealed on-disk checkpoint format. A raw gob stream (Save/LoadCheckpoint)
// cannot distinguish "file for a different configuration" from "file with
// flipped bits" from "file cut short by a crash" — all three decode to
// either an error or, worse, a plausible-looking cluster. The sealed
// format wraps the gob payload in a fixed header so the loader can tell
// the cases apart and the sweep pipeline can react correctly (silent
// re-warm for staleness, quarantine for corruption):
//
//	offset size  field
//	0      4     magic "NTCK"
//	4      2     format version (little-endian uint16)
//	6      8     config fingerprint (caller-defined, see core)
//	14     8     payload length in bytes
//	22     8     CRC64/ECMA of the payload
//	30     -     gob(Checkpoint)
//
// The fingerprint hashes everything the checkpoint's contents depend on;
// the CRC makes torn writes and bit rot detectable with certainty far
// beyond what gob's own framing provides.
var (
	// ErrCheckpointCorrupt marks a sealed checkpoint whose bytes cannot
	// be trusted: bad magic, unknown version, truncated payload, CRC
	// mismatch, or an undecodable payload that passed the CRC.
	ErrCheckpointCorrupt = errors.New("sim: corrupt checkpoint")
	// ErrCheckpointStale marks an intact sealed checkpoint whose config
	// fingerprint does not match the caller's — written by a different
	// configuration (edited profile, changed warmup, different seed).
	ErrCheckpointStale = errors.New("sim: stale checkpoint fingerprint")
)

const (
	sealedMagic   = "NTCK"
	sealedVersion = 1
	sealedHdrLen  = 4 + 2 + 8 + 8 + 8
)

var sealedCRCTable = crc64.MakeTable(crc64.ECMA)

// SaveSealed writes the checkpoint in the sealed format, stamping the
// given config fingerprint into the header.
func (ck *Checkpoint) SaveSealed(w io.Writer, fingerprint uint64) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	hdr := make([]byte, sealedHdrLen)
	copy(hdr[0:4], sealedMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], sealedVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], fingerprint)
	binary.LittleEndian.PutUint64(hdr[14:22], uint64(payload.Len()))
	binary.LittleEndian.PutUint64(hdr[22:30], crc64.Checksum(payload.Bytes(), sealedCRCTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("sim: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("sim: writing checkpoint payload: %w", err)
	}
	return nil
}

// LoadSealed reads a sealed checkpoint and verifies it in two steps:
// integrity first (magic, version, length, CRC — failure wraps
// ErrCheckpointCorrupt), then freshness (header fingerprint must equal
// fingerprint — mismatch wraps ErrCheckpointStale, reported only for
// files whose bytes are provably intact).
func LoadSealed(r io.Reader, fingerprint uint64) (*Checkpoint, error) {
	hdr := make([]byte, sealedHdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCheckpointCorrupt, err)
	}
	if string(hdr[0:4]) != sealedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != sealedVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCheckpointCorrupt, v, sealedVersion)
	}
	gotFP := binary.LittleEndian.Uint64(hdr[6:14])
	length := binary.LittleEndian.Uint64(hdr[14:22])
	wantCRC := binary.LittleEndian.Uint64(hdr[22:30])
	const maxPayload = 1 << 32 // refuse absurd lengths before allocating
	if length == 0 || length > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCheckpointCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCheckpointCorrupt, err)
	}
	if crc := crc64.Checksum(payload, sealedCRCTable); crc != wantCRC {
		return nil, fmt.Errorf("%w: CRC64 mismatch (file %016x, computed %016x)",
			ErrCheckpointCorrupt, wantCRC, crc)
	}
	if gotFP != fingerprint {
		return nil, fmt.Errorf("%w: file %016x, want %016x", ErrCheckpointStale, gotFP, fingerprint)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCheckpointCorrupt, err)
	}
	return &ck, nil
}
