package sim

import (
	"bytes"
	"testing"

	"ntcsim/internal/obs"
	"ntcsim/internal/workload"
)

// obsCluster runs a short simulation with observability enabled and
// harvests it into a fresh registry.
func obsCluster(t *testing.T, cycles int64) (*Cluster, *obs.Registry) {
	t.Helper()
	cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableObs()
	cl.Run(cycles)
	r := obs.NewRegistry()
	cl.HarvestObs(r)
	return cl, r
}

// TestEnableObsDoesNotPerturbSimulation: a cluster with observability on
// must produce the identical Measurement as one without.
func TestEnableObsDoesNotPerturbSimulation(t *testing.T) {
	run := func(enable bool) Measurement {
		cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			cl.EnableObs()
		}
		cl.Run(20_000)
		return cl.Measure(30_000)
	}
	off, on := run(false), run(true)
	if len(off.PerCore) != len(on.PerCore) {
		t.Fatal("core counts differ")
	}
	for i := range off.PerCore {
		if off.PerCore[i] != on.PerCore[i] {
			t.Fatalf("core %d stats differ with observability on", i)
		}
	}
	if off.LLC != on.LLC || off.DRAM != on.DRAM || off.Cycles != on.Cycles {
		t.Fatal("cluster measurement differs with observability on")
	}
}

// TestHarvestObsPopulatesRegistry: harvest must report the MSHR counters
// and the complete per-bank DRAM key set, with per-bank sums matching the
// aggregate DRAM statistics.
func TestHarvestObsPopulatesRegistry(t *testing.T) {
	cl, r := obsCluster(t, 50_000)
	snap := r.Snapshot()
	if _, ok := snap.Counters["cpu.mshr_full_events"]; !ok {
		t.Fatal("missing cpu.mshr_full_events")
	}
	if h, ok := snap.Histograms["cpu.mshr_occupancy"]; !ok || h.Count == 0 {
		t.Fatalf("mshr occupancy histogram missing or empty: %+v", h)
	}
	dcfg := cl.mem.sys.Config()
	wantKeys := dcfg.Channels * dcfg.RanksPerChan * dcfg.BanksPerRank * 4
	gotKeys := 0
	var rd, wr uint64
	for name, v := range snap.Counters {
		if len(name) > 5 && name[:5] == "dram." {
			gotKeys++
			switch name[len(name)-2:] {
			case "rd":
				rd += v
			case "wr":
				wr += v
			}
		}
	}
	if gotKeys != wantKeys {
		t.Fatalf("harvest produced %d dram keys, want full set %d", gotKeys, wantKeys)
	}
	dstats := cl.mem.sys.Stats()
	// Stats were not reset since enable, so cumulative per-bank counts
	// must equal the aggregate counters exactly.
	if rd != dstats.Reads || wr != dstats.Writes {
		t.Fatalf("per-bank rd/wr %d/%d, aggregate %d/%d", rd, wr, dstats.Reads, dstats.Writes)
	}
}

// TestHarvestDeterministicAcrossRuns: two identical runs must harvest
// byte-identical registries (snapshot JSON compare).
func TestHarvestDeterministicAcrossRuns(t *testing.T) {
	_, r1 := obsCluster(t, 40_000)
	_, r2 := obsCluster(t, 40_000)
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("identical runs harvested different snapshots")
	}
}

// TestRestoredClusterObsDisabled: restoring a checkpoint must come up
// with observability off — instrumentation is not simulator state.
func TestRestoredClusterObsDisabled(t *testing.T) {
	cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableObs()
	cl.Run(10_000)
	restored, err := RestoreCluster(cl.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if restored.mem.sys.PerBankCounts() != nil {
		t.Fatal("restored cluster must have observability disabled")
	}
	for _, c := range restored.cores {
		if c.MSHROccupancy() != nil {
			t.Fatal("restored core must have observability disabled")
		}
	}
}
