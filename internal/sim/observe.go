package sim

import (
	"fmt"

	"ntcsim/internal/obs"
)

// EnableObs turns on the extra hot-path instrumentation in every layer
// below the cluster: per-core MSHR occupancy tracking and per-bank DRAM
// command counting. Restored checkpoints come up with observability off
// (the instrumentation is not part of simulator state), so callers enable
// it per restored cluster. Enabling does not change simulation results —
// only what gets counted on the side.
func (cl *Cluster) EnableObs() {
	for _, c := range cl.cores {
		c.EnableObs()
	}
	cl.mem.sys.EnableObs()
}

// HarvestObs flushes the cluster's cumulative instrumentation (everything
// EnableObs turned on) into sink. Call it exactly once per cluster, after
// the last simulation step: the underlying counters are cumulative since
// EnableObs, so a second harvest would double-count. All harvested values
// are unsigned counters merged with atomic adds — deterministic across
// worker counts. A nil-registry caller should skip the call; sink must be
// non-nil here.
func (cl *Cluster) HarvestObs(sink obs.Sink) {
	var mshrFull uint64
	var occ []uint64
	for _, c := range cl.cores {
		mshrFull += c.MSHRFullStalls()
		co := c.MSHROccupancy()
		if co == nil {
			continue
		}
		if occ == nil {
			occ = make([]uint64, len(co))
		}
		for i, n := range co {
			occ[i] += n
		}
	}
	sink.Counter("cpu.mshr_full_events").Add(mshrFull)
	if occ != nil {
		// One bucket per possible outstanding-miss count [1, MSHREntries]
		// (an allocation always leaves at least one miss in flight).
		bounds := make([]float64, len(occ)-1)
		for i := range bounds {
			bounds[i] = float64(i + 1)
		}
		h := sink.Histogram("cpu.mshr_occupancy", bounds)
		for i, n := range occ {
			h.ObserveN(float64(i), n)
		}
	}

	for chIdx, banks := range cl.mem.sys.PerBankCounts() {
		for bankIdx := range banks {
			bc := &banks[bankIdx]
			prefix := fmt.Sprintf("dram.ch%d.bank%02d.", chIdx, bankIdx)
			// Add(0) included: every enabled run reports the full per-bank
			// key set, so snapshots are structurally identical regardless
			// of which banks happened to see traffic.
			sink.Counter(prefix + "act").Add(bc.ACT)
			sink.Counter(prefix + "pre").Add(bc.PRE)
			sink.Counter(prefix + "rd").Add(bc.RD)
			sink.Counter(prefix + "wr").Add(bc.WR)
		}
	}
}
