package sim

import (
	"testing"

	"ntcsim/internal/workload"
)

func TestChipConstruction(t *testing.T) {
	ch, err := NewChip(DefaultConfig(), workload.WebSearch(), 3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Clusters() != 3 {
		t.Fatalf("clusters = %d", ch.Clusters())
	}
	if _, err := NewChip(DefaultConfig(), workload.WebSearch(), 0, 1e9); err == nil {
		t.Fatal("zero clusters should be rejected")
	}
}

func TestChipMeasurement(t *testing.T) {
	ch, err := NewChip(DefaultConfig(), workload.WebSearch(), 2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	ch.FastForward(100000)
	ch.Run(10000)
	ms, dramStats := ch.Measure(30000)
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for i, m := range ms {
		if m.UserInstructions == 0 {
			t.Fatalf("cluster %d made no progress", i)
		}
		if m.UIPC() <= 0 {
			t.Fatalf("cluster %d UIPC = %v", i, m.UIPC())
		}
	}
	if dramStats.Reads == 0 {
		t.Fatal("shared DRAM saw no traffic")
	}
}

func TestChipClustersContendForMemory(t *testing.T) {
	// The single-cluster methodology scales one cluster's UIPS by the
	// cluster count; this test quantifies what that ignores: per-cluster
	// throughput must drop (or at least not rise) as more clusters share
	// the four DRAM channels.
	perCluster := func(n int) float64 {
		ch, err := NewChip(DefaultConfig(), workload.MediaStreaming(), n, 2e9)
		if err != nil {
			t.Fatal(err)
		}
		ch.FastForward(300000)
		ch.Run(10000)
		ms, _ := ch.Measure(40000)
		sum := 0.0
		for _, m := range ms {
			sum += m.UIPC()
		}
		return sum / float64(n)
	}
	one := perCluster(1)
	three := perCluster(3)
	if three > one*1.02 {
		t.Fatalf("sharing DRAM should not speed clusters up: 1-cluster %.3f vs 3-cluster %.3f",
			one, three)
	}
	// The contention penalty should be modest at these request rates —
	// the property that justifies the paper's (and our) scaling shortcut.
	if three < one*0.5 {
		t.Fatalf("contention penalty implausibly large: %.3f -> %.3f", one, three)
	}
}

func TestChipCoreIDsDisjoint(t *testing.T) {
	ch, err := NewChip(DefaultConfig(), workload.WebSearch(), 2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, cl := range ch.clusters {
		for _, c := range cl.cores {
			if seen[c.ID()] {
				t.Fatalf("duplicate core ID %d", c.ID())
			}
			seen[c.ID()] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("expected 8 distinct cores, got %d", len(seen))
	}
}

func TestChipSetFrequency(t *testing.T) {
	ch, err := NewChip(DefaultConfig(), workload.WebSearch(), 2, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	ch.SetFrequency(0.5e9)
	for _, cl := range ch.clusters {
		if cl.Frequency() != 0.5e9 {
			t.Fatal("frequency not applied to all clusters")
		}
	}
}

func TestHeteroChipPerClusterFrequencies(t *testing.T) {
	// A latency-critical cluster at 2GHz next to a batch cluster at 300MHz
	// — the consolidation configuration the paper's discussion sketches.
	specs := []ClusterSpec{
		{Profile: workload.WebSearch(), FreqHz: 2e9},
		{Profile: workload.VMHighMem(), FreqHz: 0.3e9},
	}
	ch, err := NewHeteroChip(DefaultConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	ch.FastForward(200000)
	ch.Run(10000)
	ms, _ := ch.Measure(40000)
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// Both clusters progressed over the same wall-clock window.
	if ms[0].DurationNs != ms[1].DurationNs {
		t.Fatalf("clusters measured different windows: %v vs %v",
			ms[0].DurationNs, ms[1].DurationNs)
	}
	// The fast cluster executed ~6.7x the cycles of the slow one.
	ratio := float64(ms[0].Cycles) / float64(ms[1].Cycles)
	if ratio < 6 || ratio > 7.5 {
		t.Fatalf("cycle ratio = %.2f, want ~6.7 (2GHz vs 300MHz)", ratio)
	}
	for i, m := range ms {
		if m.UserInstructions == 0 {
			t.Fatalf("cluster %d idle", i)
		}
		if m.UIPC() <= 0 || m.UIPC() > 12 {
			t.Fatalf("cluster %d UIPC %v out of range", i, m.UIPC())
		}
	}
	// The slow batch cluster must have a HIGHER UIPC (the NT effect).
	if ms[1].UIPC() <= ms[0].UIPC() {
		t.Fatalf("the 300MHz cluster should have higher UIPC: %.3f vs %.3f",
			ms[1].UIPC(), ms[0].UIPC())
	}
}

func TestHeteroChipValidation(t *testing.T) {
	if _, err := NewHeteroChip(DefaultConfig(), nil); err == nil {
		t.Fatal("empty spec should be rejected")
	}
	if _, err := NewHeteroChip(DefaultConfig(), []ClusterSpec{{Profile: nil, FreqHz: 1e9}}); err == nil {
		t.Fatal("nil profile should be rejected")
	}
	if _, err := NewHeteroChip(DefaultConfig(), []ClusterSpec{{Profile: workload.WebSearch(), FreqHz: 0}}); err == nil {
		t.Fatal("zero frequency should be rejected")
	}
}

func TestHeteroChipPerClusterRetargeting(t *testing.T) {
	ch, err := NewHeteroChip(DefaultConfig(), []ClusterSpec{
		{Profile: workload.WebSearch(), FreqHz: 2e9},
		{Profile: workload.WebSearch(), FreqHz: 2e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch.Cluster(1).SetFrequency(0.5e9)
	if ch.Cluster(0).Frequency() != 2e9 || ch.Cluster(1).Frequency() != 0.5e9 {
		t.Fatal("per-cluster DVFS should not leak across clusters")
	}
}
