// Package sim is the full-system cluster simulator — the stand-in for the
// paper's Flexus infrastructure (Sec. IV). It assembles one scale-out
// cluster exactly as the paper configures it: 4 Cortex-A57-class OoO cores
// with private 32KB 2-way L1s, a shared 4MB 16-way LLC split into 4 banks,
// a cache-coherent crossbar between cores and banks, and the DDR4 memory
// system, all on a unified nanosecond timeline.
//
// The cores run on the scaled core clock; the LLC, crossbar and DRAM run
// on fixed uncore clocks, so their latencies are constant in nanoseconds —
// the property that makes user-IPC rise as the core frequency drops.
//
// The chip hosts 9 such clusters (Sec. IV); chip-level figures are obtained
// by scaling a single simulated cluster, mirroring the paper's own
// methodology of simulating 4-core clusters and verifying that cluster
// count does not change the trends.
package sim

import (
	"fmt"
	"math"
	"time"

	"ntcsim/internal/cache"
	"ntcsim/internal/cpu"
	"ntcsim/internal/dram"
	"ntcsim/internal/rng"
	"ntcsim/internal/sram"
	"ntcsim/internal/uncore"
	"ntcsim/internal/workload"
)

// Config assembles a cluster.
type Config struct {
	CoresPerCluster int
	Core            cpu.Config
	LLCBanks        int
	LLC             sram.Config
	DRAM            dram.Config
	Seed            uint64
}

// DefaultConfig returns the paper's cluster configuration.
func DefaultConfig() Config {
	return Config{
		CoresPerCluster: 4,
		Core:            cpu.DefaultConfig(),
		LLCBanks:        4,
		LLC:             sram.DefaultLLCConfig(),
		DRAM:            dram.DefaultConfig(),
		Seed:            0x5eed,
	}
}

// Cluster is one simulated cluster plus the memory system. Not safe for
// concurrent use.
type Cluster struct {
	cfg      Config
	profiles []*workload.Profile // per core
	freqHz   float64
	cores    []*cpu.Core
	banks    []*cache.Cache
	//ntclint:allow snapshotcheck derived: rebuilt by NewMixedCluster from cfg
	llcModel *sram.Model
	xbar     *uncore.Crossbar
	mem      *SharedMemory

	// Derived access-path constants, recomputed by NewMixedCluster.
	//ntclint:allow snapshotcheck derived: recomputed from cfg and freqHz
	llcLatNs float64
	//ntclint:allow snapshotcheck derived: recomputed from cfg line size
	lineBits uint
	// Bank selection as mask/shift (LLCBanks is a validated power of
	// two), so the per-access bankOf/unbank path has no integer divides.
	//ntclint:allow snapshotcheck derived: recomputed from cfg bank count
	bankMask uint64
	//ntclint:allow snapshotcheck derived: recomputed from cfg bank count
	bankShift uint

	// Reusable scratch for Run/FastForward so repeated measurement and
	// warming windows allocate nothing after the first call.
	//ntclint:allow snapshotcheck scratch: overwritten at the start of every Run
	runTargets []int64
	//ntclint:allow snapshotcheck scratch: overwritten at the start of every FastForward
	ffRemaining []uint64

	llcWriteFills uint64 // LLC misses on L1 writebacks (allocated in place)
	llcReads      uint64 // demand reads received by the LLC
	llcWrites     uint64 // L1 writebacks received by the LLC
	dramReads     uint64
	dramWrites    uint64
}

// NewCluster builds a cluster running profile on every core at the given
// core frequency.
func NewCluster(cfg Config, profile *workload.Profile, freqHz float64) (*Cluster, error) {
	profiles := make([]*workload.Profile, cfg.CoresPerCluster)
	for i := range profiles {
		profiles[i] = profile
	}
	return NewMixedCluster(cfg, profiles, freqHz)
}

// NewMixedCluster builds a cluster with one workload per core — the
// co-scheduling configuration the paper's private-cloud discussion rules
// out because of interference (Sec. III-B1); the interference analysis in
// internal/core quantifies exactly that effect.
func NewMixedCluster(cfg Config, profiles []*workload.Profile, freqHz float64) (*Cluster, error) {
	mem, err := NewSharedMemory(cfg.DRAM)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return newCluster(cfg, profiles, freqHz, mem, 0)
}

// newCluster builds a cluster against an externally owned memory system,
// with globally unique core IDs starting at coreIDBase (used by Chip).
func newCluster(cfg Config, profiles []*workload.Profile, freqHz float64, mem *SharedMemory, coreIDBase int) (*Cluster, error) {
	if cfg.CoresPerCluster <= 0 {
		return nil, fmt.Errorf("sim: cores per cluster must be positive")
	}
	if len(profiles) != cfg.CoresPerCluster {
		return nil, fmt.Errorf("sim: %d profiles for %d cores", len(profiles), cfg.CoresPerCluster)
	}
	for i, p := range profiles {
		if p == nil {
			return nil, fmt.Errorf("sim: nil profile for core %d", i)
		}
	}
	if cfg.LLCBanks <= 0 || cfg.LLCBanks&(cfg.LLCBanks-1) != 0 {
		return nil, fmt.Errorf("sim: LLC banks must be a positive power of two, got %d", cfg.LLCBanks)
	}
	llcModel, err := sram.New(cfg.LLC)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	xbar, err := uncore.NewCrossbar(cfg.LLCBanks)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	cl := &Cluster{
		cfg:      cfg,
		profiles: profiles,
		freqHz:   freqHz,
		llcModel: llcModel,
		xbar:     xbar,
		mem:      mem,
		llcLatNs: float64(llcModel.AccessLatency()) / float64(time.Nanosecond),
	}
	for l := cfg.Core.LineBytes; l > 1; l >>= 1 {
		cl.lineBits++
	}
	cl.bankMask = uint64(cfg.LLCBanks - 1)
	for n := cfg.LLCBanks; n > 1; n >>= 1 {
		cl.bankShift++
	}
	// The cluster LLC is split into banks; each bank holds an equal share.
	bankCfg := cache.Config{
		SizeBytes: cfg.LLC.CapacityBytes / cfg.LLCBanks,
		Assoc:     cfg.LLC.Associativity,
		LineBytes: cfg.LLC.LineBytes,
	}
	seed := rng.New(cfg.Seed)
	for i := 0; i < cfg.LLCBanks; i++ {
		bankCfg.Name = fmt.Sprintf("llc-bank%d", i)
		b, err := cache.New(bankCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cl.banks = append(cl.banks, b)
	}
	for i := 0; i < cfg.CoresPerCluster; i++ {
		gid := coreIDBase + i
		gen := workload.NewGenerator(profiles[i], gid, seed)
		core, err := cpu.New(cfg.Core, gid, gen, cl, freqHz)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cl.cores = append(cl.cores, core)
	}
	return cl, nil
}

// Profile returns the workload the cluster runs.
func (cl *Cluster) Profile() *workload.Profile { return cl.profiles[0] }

// Profiles returns the per-core workload assignment.
func (cl *Cluster) Profiles() []*workload.Profile { return cl.profiles }

// Frequency returns the core clock in Hz.
func (cl *Cluster) Frequency() float64 { return cl.freqHz }

// SetFrequency applies a DVFS transition to all cores. Caches, predictors
// and DRAM state survive, so one warmed cluster can be swept across the
// whole frequency range (the uncore runs on its own clock and is
// unaffected, matching the paper's platform). Run a settle window before
// the next measurement.
func (cl *Cluster) SetFrequency(hz float64) {
	cl.freqHz = hz
	for _, c := range cl.cores {
		c.SetFrequency(hz)
	}
}

// Cores returns the core count.
func (cl *Cluster) Cores() int { return len(cl.cores) }

// Reseed re-derives every core's workload-generator streams from seed,
// preserving all microarchitectural and positional state. A sweep engine
// calls this after restoring a warmed checkpoint so that each operating
// point evaluates under its own deterministic RNG substream (split by
// point index) instead of replaying the checkpointed stream positions.
func (cl *Cluster) Reseed(seed *rng.Stream) {
	for _, c := range cl.cores {
		c.ReseedWorkload(seed)
	}
}

// bankOf selects the LLC bank for a line address and returns the
// bank-local address (bank-selection bits stripped, so the bank's full set
// index space is used). Bank count is a power of two, so selection is a
// mask and the divide a shift — exact integer equivalents.
func (cl *Cluster) bankOf(addr uint64) (bank int, bankAddr uint64) {
	line := addr >> cl.lineBits
	return int(line & cl.bankMask), (line >> cl.bankShift) << cl.lineBits
}

// unbank reconstructs the original address from a bank-local one (used for
// LLC victim writebacks).
func (cl *Cluster) unbank(bank int, bankAddr uint64) uint64 {
	line := bankAddr >> cl.lineBits
	return (line<<cl.bankShift | uint64(bank)) << cl.lineBits
}

// Access implements cpu.MemSystem: a demand request (write=false) or a
// posted L1 writeback (write=true) below the L1s.
func (cl *Cluster) Access(coreID int, addr uint64, write bool, nowNs float64) float64 {
	if write {
		cl.llcWrites++
	} else {
		cl.llcReads++
	}
	bank, bankAddr := cl.bankOf(addr)
	// Inline clamp instead of math.Max: identical for every input the
	// cores produce (non-negative or NaN-free timestamps), and the call
	// disappears from the per-miss path.
	t := nowNs
	if t < 0 {
		t = 0
	}
	arrive := cl.xbar.Request(bank, t)
	ready := arrive + cl.llcLatNs

	res := cl.banks[bank].Access(bankAddr, write)
	if res.Hit {
		// Served by the LLC; one crossbar traversal back to the core.
		return ready + cl.xbar.TraversalNs
	}
	if res.Victim.Valid && res.Victim.Dirty {
		// LLC dirty victim is written back to DRAM (posted).
		cl.mem.Submit(cl.unbank(bank, res.Victim.Addr), true, ready)
		cl.dramWrites++
	}
	if write {
		// L1 writeback that missed the LLC: allocate the full line in
		// place (the data comes from the core), no DRAM fetch needed.
		cl.llcWriteFills++
		return ready + cl.xbar.TraversalNs
	}
	// Demand fill from DRAM.
	done := cl.mem.Submit(addr, false, ready)
	cl.dramReads++
	return done + cl.llcLatNs + cl.xbar.TraversalNs
}

// Warm implements cpu.WarmMem: touch LLC tags (and nothing else) during
// functional warming.
func (cl *Cluster) Warm(coreID int, addr uint64, write bool) {
	bank, bankAddr := cl.bankOf(addr)
	cl.banks[bank].Access(bankAddr, write)
}

// FastForward functionally warms the whole cluster by n instructions per
// core (caches and branch predictors train; no timing).
func (cl *Cluster) FastForward(nPerCore uint64) {
	// Interleave in chunks so the shared LLC sees a realistic mix.
	const chunk = 8192
	if cl.ffRemaining == nil {
		cl.ffRemaining = make([]uint64, len(cl.cores))
	}
	remaining := cl.ffRemaining
	for i := range remaining {
		remaining[i] = nPerCore
	}
	for {
		active := false
		for i, c := range cl.cores {
			if remaining[i] == 0 {
				continue
			}
			n := uint64(chunk)
			if n > remaining[i] {
				n = remaining[i]
			}
			c.FastForward(n, cl)
			remaining[i] -= n
			active = true
		}
		if !active {
			return
		}
	}
}

// Run advances every core by the given number of core cycles, interleaving
// instruction-by-instruction so shared-resource contention is honored: the
// core with the smallest local clock always steps next.
func (cl *Cluster) Run(cycles int64) {
	if cl.runTargets == nil {
		cl.runTargets = make([]int64, len(cl.cores))
	}
	targets := cl.runTargets
	for i, c := range cl.cores {
		targets[i] = c.Cycle() + cycles
	}
	for {
		best := -1
		var bestCycle int64 = math.MaxInt64
		for i, c := range cl.cores {
			if cy := c.Cycle(); cy < targets[i] && cy < bestCycle {
				best, bestCycle = i, cy
			}
		}
		if best < 0 {
			return
		}
		cl.cores[best].Step()
	}
}

// ResetStats clears all measurement counters (cores, LLC, crossbar, DRAM)
// while preserving microarchitectural state.
func (cl *Cluster) ResetStats() {
	for _, c := range cl.cores {
		c.ResetStats()
	}
	for _, b := range cl.banks {
		b.ResetStats()
	}
	cl.xbar.ResetStats()
	cl.mem.ResetStats()
	cl.llcWriteFills = 0
	cl.llcReads = 0
	cl.llcWrites = 0
	cl.dramReads = 0
	cl.dramWrites = 0
}

// Measurement is the outcome of one detailed measurement window.
type Measurement struct {
	Cycles     int64   // core cycles in the window
	FreqHz     float64 // core clock
	DurationNs float64 // wall-clock duration of the window

	Instructions     uint64 // committed, all cores
	UserInstructions uint64

	PerCore []cpu.Stats
	LLC     cache.Stats
	DRAM    dram.Stats

	XbarTransfers uint64
	// LLCReads / LLCWrites split the LLC traffic by direction (demand
	// reads vs L1 writebacks), for the uncore energy model.
	LLCReads  uint64
	LLCWrites uint64
}

// UIPC returns the cluster's aggregate user instructions per core-cycle —
// the paper's performance metric (Sec. IV).
func (m Measurement) UIPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.UserInstructions) / float64(m.Cycles)
}

// UIPS returns aggregate user instructions per second.
func (m Measurement) UIPS() float64 { return m.UIPC() * m.FreqHz }

// ReadBandwidth returns DRAM read bandwidth in bytes/s over the window.
func (m Measurement) ReadBandwidth() float64 {
	if m.DurationNs <= 0 {
		return 0
	}
	return float64(m.DRAM.BytesRead) / (m.DurationNs * 1e-9)
}

// WriteBandwidth returns DRAM write bandwidth in bytes/s over the window.
func (m Measurement) WriteBandwidth() float64 {
	if m.DurationNs <= 0 {
		return 0
	}
	return float64(m.DRAM.BytesWritten) / (m.DurationNs * 1e-9)
}

// LLCAccessRate returns LLC accesses per second over the window.
func (m Measurement) LLCAccessRate() float64 {
	if m.DurationNs <= 0 {
		return 0
	}
	return float64(m.LLC.Accesses) / (m.DurationNs * 1e-9)
}

// Measure runs one detailed window of the given length in core cycles and
// returns its measurement (counters are reset at the start of the window).
func (cl *Cluster) Measure(cycles int64) Measurement {
	cl.ResetStats()
	cl.Run(cycles)
	m := Measurement{
		Cycles:     cycles,
		FreqHz:     cl.freqHz,
		DurationNs: float64(cycles) * 1e9 / cl.freqHz,
		DRAM:       cl.mem.Stats(),
	}
	for _, c := range cl.cores {
		s := c.Stats()
		m.PerCore = append(m.PerCore, s)
		m.Instructions += s.Instructions
		m.UserInstructions += s.UserInstructions
	}
	for _, b := range cl.banks {
		s := b.Stats()
		m.LLC.Accesses += s.Accesses
		m.LLC.Hits += s.Hits
		m.LLC.Misses += s.Misses
		m.LLC.Writebacks += s.Writebacks
	}
	m.XbarTransfers = cl.xbar.Transfers()
	m.LLCReads = cl.llcReads
	m.LLCWrites = cl.llcWrites
	return m
}
