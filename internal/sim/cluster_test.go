package sim

import (
	"testing"

	"ntcsim/internal/workload"
)

// newTestCluster builds a cluster with a short warmup already applied.
func newTestCluster(t *testing.T, p *workload.Profile, freqHz float64) *Cluster {
	t.Helper()
	cl, err := NewCluster(DefaultConfig(), p, freqHz)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestClusterConstruction(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 1e9)
	if cl.Cores() != 4 {
		t.Fatalf("cores = %d, want 4", cl.Cores())
	}
	if cl.Profile().Name != "web-search" {
		t.Fatal("profile mismatch")
	}
	if cl.Frequency() != 1e9 {
		t.Fatal("frequency mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.CoresPerCluster = 0 },
		func(c *Config) { c.LLCBanks = 0 },
		func(c *Config) { c.LLCBanks = 3 },
		func(c *Config) { c.DRAM.Channels = 3 },
		func(c *Config) { c.LLC.CapacityBytes = 0 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewCluster(cfg, workload.WebSearch(), 1e9); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMeasurementBasics(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 1e9)
	cl.FastForward(50000)
	cl.Run(20000)
	m := cl.Measure(30000)
	if m.Instructions == 0 || m.UserInstructions == 0 {
		t.Fatalf("no instructions measured: %+v", m)
	}
	if m.UserInstructions > m.Instructions {
		t.Fatal("user instructions exceed total")
	}
	if m.UIPC() <= 0 || m.UIPC() > float64(4*3) {
		t.Fatalf("cluster UIPC = %v out of range", m.UIPC())
	}
	if m.UIPS() != m.UIPC()*1e9 {
		t.Fatal("UIPS must be UIPC * frequency")
	}
	if m.DurationNs != 30000 {
		t.Fatalf("duration = %v ns, want 30000 (1GHz, 30k cycles)", m.DurationNs)
	}
	if len(m.PerCore) != 4 {
		t.Fatalf("per-core stats = %d", len(m.PerCore))
	}
}

func TestLLCFiltersDRAMTraffic(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 1e9)
	cl.FastForward(100000)
	m := cl.Measure(50000)
	if m.LLC.Accesses == 0 {
		t.Fatal("no LLC traffic")
	}
	if m.LLC.Hits == 0 {
		t.Fatal("LLC should capture some of the working set")
	}
	if m.DRAM.Reads+m.DRAM.Writes >= m.LLC.Accesses {
		t.Fatalf("DRAM traffic (%d) should be filtered below LLC traffic (%d)",
			m.DRAM.Reads+m.DRAM.Writes, m.LLC.Accesses)
	}
}

func TestUIPCRisesAsFrequencyDrops(t *testing.T) {
	// The paper's core mechanism, end to end through the real hierarchy.
	uipcAt := func(hz float64) float64 {
		cl := newTestCluster(t, workload.DataServing(), hz)
		cl.FastForward(100000)
		cl.Run(10000)
		return cl.Measure(40000).UIPC()
	}
	low := uipcAt(0.3e9)
	high := uipcAt(2e9)
	if low <= high {
		t.Fatalf("UIPC at 300MHz (%.3f) should exceed UIPC at 2GHz (%.3f)", low, high)
	}
}

func TestUIPSRisesWithFrequency(t *testing.T) {
	uipsAt := func(hz float64) float64 {
		cl := newTestCluster(t, workload.WebSearch(), hz)
		cl.FastForward(100000)
		cl.Run(10000)
		return cl.Measure(40000).UIPS()
	}
	if uipsAt(2e9) <= uipsAt(0.4e9) {
		t.Fatal("throughput must rise with frequency")
	}
}

func TestVMHighMemOutperformsLowMem(t *testing.T) {
	// Paper Sec. V-B1: "the UIPS of VMs high-mem is higher than VMs
	// low-mem".
	uips := func(p *workload.Profile) float64 {
		cl := newTestCluster(t, p, 1e9)
		cl.FastForward(100000)
		cl.Run(10000)
		return cl.Measure(40000).UIPS()
	}
	lo := uips(workload.VMLowMem())
	hi := uips(workload.VMHighMem())
	if hi <= lo {
		t.Fatalf("high-mem UIPS (%.3g) should exceed low-mem (%.3g)", hi, lo)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Measurement {
		cl := newTestCluster(t, workload.MediaStreaming(), 1e9)
		cl.FastForward(50000)
		return cl.Measure(20000)
	}
	a, b := run(), run()
	if a.Instructions != b.Instructions || a.UserInstructions != b.UserInstructions ||
		a.LLC != b.LLC || a.DRAM != b.DRAM {
		t.Fatal("cluster simulation is not deterministic")
	}
}

func TestSeedChangesResults(t *testing.T) {
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.Seed = 999
	a, err := NewCluster(cfgA, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(cfgB, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	a.FastForward(50000)
	b.FastForward(50000)
	ma := a.Measure(20000)
	mb := b.Measure(20000)
	if ma.Instructions == mb.Instructions && ma.DRAM == mb.DRAM {
		t.Fatal("different seeds should perturb the simulation")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	cl := newTestCluster(t, workload.MediaStreaming(), 1e9)
	cl.FastForward(100000)
	m := cl.Measure(50000)
	if m.ReadBandwidth() <= 0 {
		t.Fatal("streaming workload must consume read bandwidth")
	}
	if m.ReadBandwidth() > cl.cfg.DRAM.PeakBandwidth() {
		t.Fatalf("read bandwidth %.2f GB/s exceeds peak", m.ReadBandwidth()/1e9)
	}
	wantBW := float64(m.DRAM.BytesRead) / (m.DurationNs * 1e-9)
	if m.ReadBandwidth() != wantBW {
		t.Fatal("bandwidth accounting inconsistent")
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	cl := newTestCluster(t, workload.DataServing(), 1e9)
	cl.FastForward(400000)
	m := cl.Measure(100000)
	if m.DRAM.Writes == 0 {
		t.Fatal("store-heavy workload must eventually write back to DRAM")
	}
}

func TestCoresStayInLockstep(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 1e9)
	cl.FastForward(20000)
	cl.Run(30000)
	var lo, hi int64 = 1 << 62, 0
	for _, c := range cl.cores {
		cy := c.Cycle()
		if cy < lo {
			lo = cy
		}
		if cy > hi {
			hi = cy
		}
	}
	// The min-clock scheduler keeps cores within one instruction's span of
	// each other relative to the 30k-cycle window.
	if hi-lo > 5000 {
		t.Fatalf("core clocks diverged: [%d, %d]", lo, hi)
	}
}

func TestMeasureWindowIsolation(t *testing.T) {
	// Back-to-back measurement windows count only their own events.
	cl := newTestCluster(t, workload.WebSearch(), 1e9)
	cl.FastForward(50000)
	m1 := cl.Measure(20000)
	m2 := cl.Measure(20000)
	if m2.Instructions > m1.Instructions*3 {
		t.Fatalf("window 2 (%d instrs) out of line with window 1 (%d)",
			m2.Instructions, m1.Instructions)
	}
	if m2.Cycles != 20000 {
		t.Fatal("window length wrong")
	}
}

func TestScaleOutAppsHaveLowUIPC(t *testing.T) {
	// Scale-out workloads commit well below machine width (the premise of
	// the scale-out processor literature the paper builds on).
	cl := newTestCluster(t, workload.DataServing(), 2e9)
	cl.FastForward(200000)
	cl.Run(10000)
	m := cl.Measure(50000)
	perCoreUIPC := m.UIPC() / 4
	if perCoreUIPC > 1.5 {
		t.Fatalf("data-serving per-core UIPC at 2GHz = %.3f, unrealistically high", perCoreUIPC)
	}
	if perCoreUIPC < 0.05 {
		t.Fatalf("data-serving per-core UIPC at 2GHz = %.3f, unrealistically low", perCoreUIPC)
	}
}

func BenchmarkClusterRun(b *testing.B) {
	cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 1e9)
	if err != nil {
		b.Fatal(err)
	}
	cl.FastForward(50000)
	b.ResetTimer()
	cl.Run(int64(b.N))
}

func BenchmarkClusterFastForward(b *testing.B) {
	cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 1e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cl.FastForward(uint64(b.N))
}

// TestAccessPathAllocs is the optimization contract for the memory access
// kernel: once the cluster is warm, a demand read, an L1 writeback, and
// the DRAM fill path behind them perform zero heap allocations per
// access. This is the path every simulated L1 miss takes, so an
// allocation here multiplies across the billions of events of a sweep.
func TestAccessPathAllocs(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 2e9)
	cl.FastForward(100_000)
	var addr uint64 = 0x5eed
	nowNs := 1.0
	i := 0
	allocs := testing.AllocsPerRun(20_000, func() {
		addr = addr*2862933555777941757 + 3037000493
		nowNs += 2.0
		cl.Access(0, addr&((1<<30)-1), i&7 == 0, nowNs)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Cluster.Access allocates %.4f allocs/op, want 0", allocs)
	}
}

// TestFastForwardSteadyStateAllocs gates the functional-warming kernel:
// after the first call has sized the interleave scratch, further
// fast-forward windows allocate nothing.
func TestFastForwardSteadyStateAllocs(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 2e9)
	cl.FastForward(10_000) // first call sizes the scratch
	allocs := testing.AllocsPerRun(20, func() {
		cl.FastForward(2_000)
	})
	if allocs != 0 {
		t.Fatalf("Cluster.FastForward allocates %.4f allocs/window, want 0", allocs)
	}
}

// TestRunSteadyStateAllocs gates the detailed-simulation driver the same
// way: repeated measurement windows reuse the per-core target scratch.
func TestRunSteadyStateAllocs(t *testing.T) {
	cl := newTestCluster(t, workload.WebSearch(), 2e9)
	cl.FastForward(50_000)
	cl.Run(1_000) // first call sizes the scratch
	allocs := testing.AllocsPerRun(10, func() {
		cl.Run(500)
	})
	if allocs != 0 {
		t.Fatalf("Cluster.Run allocates %.4f allocs/window, want 0", allocs)
	}
}

// TestBankSelectionMaskEquivalence pins the mask/shift bank selection
// against the modulo/divide arithmetic it replaced, across bank counts
// and a dense address sample, including round-tripping through unbank.
func TestBankSelectionMaskEquivalence(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.LLCBanks = banks
		cfg.LLC.CapacityBytes = 4 << 20
		cl, err := NewCluster(cfg, workload.WebSearch(), 1e9)
		if err != nil {
			t.Fatal(err)
		}
		var addr uint64 = 1
		for i := 0; i < 50_000; i++ {
			addr = addr*2862933555777941757 + 3037000493
			a := addr & ((1 << 40) - 1)
			gotBank, gotLocal := cl.bankOf(a)
			line := a >> cl.lineBits
			n := uint64(banks)
			wantBank, wantLocal := int(line%n), (line/n)<<cl.lineBits
			if gotBank != wantBank || gotLocal != wantLocal {
				t.Fatalf("banks=%d addr=%#x: bankOf = (%d, %#x), want (%d, %#x)",
					banks, a, gotBank, gotLocal, wantBank, wantLocal)
			}
			lineAddr := (a >> cl.lineBits) << cl.lineBits
			if rt := cl.unbank(gotBank, gotLocal); rt != lineAddr {
				t.Fatalf("banks=%d addr=%#x: unbank round-trip = %#x, want %#x", banks, a, rt, lineAddr)
			}
		}
	}
}
