package sim

import (
	"context"
	"fmt"
	"math"

	"ntcsim/internal/dram"
	"ntcsim/internal/parallel"
	"ntcsim/internal/workload"
)

// SharedMemory wraps one DRAM system behind a monotone clock so that
// multiple clusters (whose core clocks drift independently) can share it.
type SharedMemory struct {
	sys     *dram.System
	clampNs float64
}

// NewSharedMemory builds the shared memory system.
func NewSharedMemory(cfg dram.Config) (*SharedMemory, error) {
	sys, err := dram.New(cfg)
	if err != nil {
		return nil, err
	}
	return &SharedMemory{sys: sys}, nil
}

// Submit forwards to the DRAM simulator with time clamped forward.
func (m *SharedMemory) Submit(addr uint64, write bool, nowNs float64) float64 {
	if nowNs > m.clampNs {
		m.clampNs = nowNs
	}
	return m.sys.Submit(addr, write, m.clampNs)
}

// Stats exposes the underlying statistics.
func (m *SharedMemory) Stats() dram.Stats { return m.sys.Stats() }

// ResetStats clears statistics, preserving bank state.
func (m *SharedMemory) ResetStats() { m.sys.ResetStats() }

// Config returns the memory configuration.
func (m *SharedMemory) Config() dram.Config { return m.sys.Config() }

// Chip simulates several clusters sharing one memory system — the
// configuration the single-cluster methodology approximates by scaling.
// It exists to validate that approximation (DESIGN.md simplification #2):
// per-cluster throughput with 1, 2, 3... clusters actively sharing the
// DRAM channels quantifies the contention the scaling ignores.
type Chip struct {
	clusters []*Cluster
	mem      *SharedMemory
	jobs     int
}

// NewChip builds n identical clusters running profile, all sharing one
// DRAM system. Cores receive globally unique IDs so their address spaces
// stay disjoint.
func NewChip(cfg Config, profile *workload.Profile, n int, freqHz float64) (*Chip, error) {
	assign := make([]ClusterSpec, n)
	for i := range assign {
		assign[i] = ClusterSpec{Profile: profile, FreqHz: freqHz}
	}
	return NewHeteroChip(cfg, assign)
}

// ClusterSpec assigns one cluster its workload and core frequency.
type ClusterSpec struct {
	Profile *workload.Profile
	FreqHz  float64
}

// NewHeteroChip builds a chip whose clusters run different workloads at
// different frequencies — per-cluster DVFS is exactly what the paper's
// cluster organization (one V/f and OS image per cluster) permits, and the
// substrate for the consolidation direction of Sec. V-C: latency-critical
// clusters at their QoS point next to batch clusters at the NT optimum.
func NewHeteroChip(cfg Config, clusters []ClusterSpec) (*Chip, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("sim: chip needs at least one cluster")
	}
	mem, err := NewSharedMemory(cfg.DRAM)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	ch := &Chip{mem: mem}
	for i, spec := range clusters {
		if spec.Profile == nil || spec.FreqHz <= 0 {
			return nil, fmt.Errorf("sim: cluster %d has no workload or frequency", i)
		}
		clusterCfg := cfg
		clusterCfg.Seed = cfg.Seed + uint64(i)*0x9e37
		profiles := make([]*workload.Profile, cfg.CoresPerCluster)
		for j := range profiles {
			profiles[j] = spec.Profile
		}
		cl, err := newCluster(clusterCfg, profiles, spec.FreqHz, mem, i*cfg.CoresPerCluster)
		if err != nil {
			return nil, err
		}
		ch.clusters = append(ch.clusters, cl)
	}
	return ch, nil
}

// Cluster returns the i-th cluster (for per-cluster DVFS or inspection).
func (c *Chip) Cluster(i int) *Cluster { return c.clusters[i] }

// Clusters returns the cluster count.
func (c *Chip) Clusters() int { return len(c.clusters) }

// SetJobs bounds the worker count for the chip's parallel phases
// (currently functional warmup). n <= 0 selects GOMAXPROCS. The result of
// every phase is bit-identical for any setting; jobs only bounds
// concurrency.
func (c *Chip) SetJobs(n int) { c.jobs = n }

// FastForward functionally warms every cluster. During functional warming
// a cluster touches only its own cores, generators and LLC banks — never
// the shared DRAM system — so clusters warm concurrently (bounded by
// SetJobs) with results identical to the serial loop.
func (c *Chip) FastForward(nPerCore uint64) {
	_ = parallel.ForEach(context.Background(), len(c.clusters), c.jobs,
		func(_ context.Context, i int) error {
			c.clusters[i].FastForward(nPerCore)
			return nil
		})
}

// SetFrequency retargets every core on the chip.
func (c *Chip) SetFrequency(hz float64) {
	for _, cl := range c.clusters {
		cl.SetFrequency(hz)
	}
}

// Run advances every core on the chip by the given wall-clock duration
// (expressed as cycles of the FASTEST cluster's clock), always stepping the
// core with the smallest local time so shared-memory contention is honored
// across clusters with different frequencies.
func (c *Chip) Run(cycles int64) {
	fastest := 0.0
	for _, cl := range c.clusters {
		if cl.freqHz > fastest {
			fastest = cl.freqHz
		}
	}
	durNs := float64(cycles) * 1e9 / fastest
	type target struct {
		cl      *Cluster
		idx     int
		limitNs float64
	}
	var ts []target
	for _, cl := range c.clusters {
		for i, core := range cl.cores {
			ts = append(ts, target{cl, i, core.NowNs() + durNs})
		}
	}
	for {
		best := -1
		bestNs := math.Inf(1)
		for i, t := range ts {
			if now := t.cl.cores[t.idx].NowNs(); now < t.limitNs && now < bestNs {
				best, bestNs = i, now
			}
		}
		if best < 0 {
			return
		}
		t := ts[best]
		t.cl.cores[t.idx].Step()
	}
}

// Measure runs one detailed window and returns per-cluster measurements
// plus the shared DRAM statistics for the window.
func (c *Chip) Measure(cycles int64) ([]Measurement, dram.Stats) {
	for _, cl := range c.clusters {
		cl.ResetStats()
	}
	c.mem.ResetStats()
	c.Run(cycles)
	// The window length in wall-clock terms (Run's contract: `cycles` of
	// the fastest cluster's clock).
	fastest := 0.0
	for _, cl := range c.clusters {
		if cl.freqHz > fastest {
			fastest = cl.freqHz
		}
	}
	durNs := float64(cycles) * 1e9 / fastest
	out := make([]Measurement, 0, len(c.clusters))
	for _, cl := range c.clusters {
		m := Measurement{
			Cycles:     int64(durNs * cl.freqHz / 1e9),
			FreqHz:     cl.freqHz,
			DurationNs: durNs,
		}
		for _, core := range cl.cores {
			s := core.Stats()
			m.PerCore = append(m.PerCore, s)
			m.Instructions += s.Instructions
			m.UserInstructions += s.UserInstructions
		}
		for _, b := range cl.banks {
			s := b.Stats()
			m.LLC.Accesses += s.Accesses
			m.LLC.Hits += s.Hits
			m.LLC.Misses += s.Misses
			m.LLC.Writebacks += s.Writebacks
		}
		m.XbarTransfers = cl.xbar.Transfers()
		m.LLCReads = cl.llcReads
		m.LLCWrites = cl.llcWrites
		out = append(out, m)
	}
	return out, c.mem.Stats()
}
