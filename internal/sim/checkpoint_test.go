package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"ntcsim/internal/workload"
)

func TestCheckpointIdenticalContinuation(t *testing.T) {
	// A restored cluster must continue *bit-identically* to the original:
	// warm, checkpoint, then run both sides and compare measurements.
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(200000)
	orig.Run(20000)

	ck := orig.Checkpoint()
	restored, err := RestoreCluster(ck)
	if err != nil {
		t.Fatal(err)
	}

	a := orig.Measure(30000)
	b := restored.Measure(30000)
	if a.Instructions != b.Instructions || a.UserInstructions != b.UserInstructions {
		t.Fatalf("instruction streams diverged: %d/%d vs %d/%d",
			a.Instructions, a.UserInstructions, b.Instructions, b.UserInstructions)
	}
	if a.LLC != b.LLC {
		t.Fatalf("LLC stats diverged: %+v vs %+v", a.LLC, b.LLC)
	}
	if a.DRAM != b.DRAM {
		t.Fatalf("DRAM stats diverged: %+v vs %+v", a.DRAM, b.DRAM)
	}
	for i := range a.PerCore {
		if a.PerCore[i] != b.PerCore[i] {
			t.Fatalf("core %d stats diverged", i)
		}
	}
}

// TestCheckpointCoversLLCTraffic is the regression test for a real
// coverage gap the snapshotcheck analyzer surfaced: llcReads and
// llcWrites were accumulated by Access but never checkpointed, so a
// restored cluster silently lost its LLC read/write split (latent only
// because Measure resets stats first). Every accumulated counter must
// survive the round trip, and re-checkpointing the restored cluster
// must reproduce the original image exactly.
func TestCheckpointCoversLLCTraffic(t *testing.T) {
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(100000)
	orig.Run(20000)
	if orig.llcReads == 0 || orig.llcWrites == 0 {
		t.Fatalf("warmup produced no LLC traffic (reads=%d writes=%d); test is vacuous",
			orig.llcReads, orig.llcWrites)
	}

	ck := orig.Checkpoint()
	if ck.LLCReads != orig.llcReads || ck.LLCWrites != orig.llcWrites {
		t.Fatalf("checkpoint dropped LLC traffic: image %d/%d, live %d/%d",
			ck.LLCReads, ck.LLCWrites, orig.llcReads, orig.llcWrites)
	}
	restored, err := RestoreCluster(ck)
	if err != nil {
		t.Fatal(err)
	}
	if restored.llcReads != orig.llcReads || restored.llcWrites != orig.llcWrites ||
		restored.llcWriteFills != orig.llcWriteFills ||
		restored.dramReads != orig.dramReads || restored.dramWrites != orig.dramWrites {
		t.Fatalf("restore dropped counters: got reads=%d writes=%d fills=%d dr=%d dw=%d",
			restored.llcReads, restored.llcWrites, restored.llcWriteFills,
			restored.dramReads, restored.dramWrites)
	}
	if again := restored.Checkpoint(); !reflect.DeepEqual(ck, again) {
		t.Fatal("re-checkpointing the restored cluster diverged from the original image")
	}
}

func TestCheckpointSurvivesSerialization(t *testing.T) {
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.MediaStreaming(), 2e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(150000)
	orig.Run(10000)
	ck := orig.Checkpoint()

	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCluster(loaded)
	if err != nil {
		t.Fatal(err)
	}

	a := orig.Measure(20000)
	b := restored.Measure(20000)
	if a.Instructions != b.Instructions || a.DRAM != b.DRAM || a.LLC != b.LLC {
		t.Fatal("round-tripped checkpoint diverged")
	}
}

func TestCheckpointPreservesDVFSContext(t *testing.T) {
	// Checkpoint at one frequency, restore, retarget: the warmed state
	// carries over, which is the whole point (warm once, sweep many).
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.WebSearch(), 2e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(300000)
	orig.Run(10000)
	ck := orig.Checkpoint()

	restored, err := RestoreCluster(ck)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetFrequency(0.5e9)
	restored.Run(10000)
	m := restored.Measure(20000)
	if m.UIPC() <= 0 {
		t.Fatal("restored cluster should simulate after a DVFS change")
	}
	// A warmed restore must beat a cold cluster at the same point.
	cold, err := NewCluster(cfg, workload.WebSearch(), 0.5e9)
	if err != nil {
		t.Fatal(err)
	}
	coldM := cold.Measure(20000)
	if m.PerCore[0].L1D.HitRate() <= coldM.PerCore[0].L1D.HitRate() {
		t.Fatalf("restored caches should be warm: %.3f vs cold %.3f",
			m.PerCore[0].L1D.HitRate(), coldM.PerCore[0].L1D.HitRate())
	}
}

func TestCheckpointUnknownWorkloadRejected(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	ck := cl.Checkpoint()
	ck.Profiles[0] = "no-such-workload"
	if _, err := RestoreCluster(ck); err == nil {
		t.Fatal("unknown workload name should be rejected")
	}
}

func TestCheckpointShapeMismatchRejected(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	ck := cl.Checkpoint()
	ck.Config.CoresPerCluster = 2 // shape no longer matches saved cores
	ck.Profiles = ck.Profiles[:2]
	if _, err := RestoreCluster(ck); err == nil {
		t.Fatal("core-count mismatch should be rejected")
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}

// sealedTestBytes warms a small cluster and returns its sealed encoding.
func sealedTestBytes(t *testing.T, fp uint64) []byte {
	t.Helper()
	cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	cl.FastForward(100000)
	cl.Run(5000)
	var buf bytes.Buffer
	if err := cl.Checkpoint().SaveSealed(&buf, fp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSealedRoundTrip(t *testing.T) {
	const fp = 0xfeedbeefcafe
	raw := sealedTestBytes(t, fp)
	ck, err := LoadSealed(bytes.NewReader(raw), fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCluster(ck); err != nil {
		t.Fatalf("restoring round-tripped sealed checkpoint: %v", err)
	}
}

func TestSealedStaleFingerprint(t *testing.T) {
	raw := sealedTestBytes(t, 1)
	_, err := LoadSealed(bytes.NewReader(raw), 2)
	if !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("fingerprint mismatch should be ErrCheckpointStale, got %v", err)
	}
	if errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatal("a stale file is intact, not corrupt")
	}
}

func TestSealedCorruption(t *testing.T) {
	const fp = 7
	raw := sealedTestBytes(t, fp)
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"unknown version", func(b []byte) []byte { b[4] = 0x7f; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit flip in payload", func(b []byte) []byte { b[sealedHdrLen+17] ^= 0x01; return b }},
		{"bit flip in stored CRC", func(b []byte) []byte { b[22] ^= 0x01; return b }},
		{"zero length", func(b []byte) []byte {
			for i := 14; i < 22; i++ {
				b[i] = 0
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), raw...))
			_, err := LoadSealed(bytes.NewReader(mut), fp)
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("want ErrCheckpointCorrupt, got %v", err)
			}
		})
	}
}

// TestSealedStaleRequiresIntegrity pins the verification order: a file that
// is both corrupt AND has a mismatched fingerprint must be reported corrupt —
// staleness is only meaningful for provably intact bytes.
func TestSealedStaleRequiresIntegrity(t *testing.T) {
	raw := sealedTestBytes(t, 1)
	raw[len(raw)-1] ^= 0xff
	_, err := LoadSealed(bytes.NewReader(raw), 2)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt+stale file must report corruption first, got %v", err)
	}
}
