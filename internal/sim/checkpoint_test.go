package sim

import (
	"bytes"
	"testing"

	"ntcsim/internal/workload"
)

func TestCheckpointIdenticalContinuation(t *testing.T) {
	// A restored cluster must continue *bit-identically* to the original:
	// warm, checkpoint, then run both sides and compare measurements.
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(200000)
	orig.Run(20000)

	ck := orig.Checkpoint()
	restored, err := RestoreCluster(ck)
	if err != nil {
		t.Fatal(err)
	}

	a := orig.Measure(30000)
	b := restored.Measure(30000)
	if a.Instructions != b.Instructions || a.UserInstructions != b.UserInstructions {
		t.Fatalf("instruction streams diverged: %d/%d vs %d/%d",
			a.Instructions, a.UserInstructions, b.Instructions, b.UserInstructions)
	}
	if a.LLC != b.LLC {
		t.Fatalf("LLC stats diverged: %+v vs %+v", a.LLC, b.LLC)
	}
	if a.DRAM != b.DRAM {
		t.Fatalf("DRAM stats diverged: %+v vs %+v", a.DRAM, b.DRAM)
	}
	for i := range a.PerCore {
		if a.PerCore[i] != b.PerCore[i] {
			t.Fatalf("core %d stats diverged", i)
		}
	}
}

func TestCheckpointSurvivesSerialization(t *testing.T) {
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.MediaStreaming(), 2e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(150000)
	orig.Run(10000)
	ck := orig.Checkpoint()

	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCluster(loaded)
	if err != nil {
		t.Fatal(err)
	}

	a := orig.Measure(20000)
	b := restored.Measure(20000)
	if a.Instructions != b.Instructions || a.DRAM != b.DRAM || a.LLC != b.LLC {
		t.Fatal("round-tripped checkpoint diverged")
	}
}

func TestCheckpointPreservesDVFSContext(t *testing.T) {
	// Checkpoint at one frequency, restore, retarget: the warmed state
	// carries over, which is the whole point (warm once, sweep many).
	cfg := DefaultConfig()
	orig, err := NewCluster(cfg, workload.WebSearch(), 2e9)
	if err != nil {
		t.Fatal(err)
	}
	orig.FastForward(300000)
	orig.Run(10000)
	ck := orig.Checkpoint()

	restored, err := RestoreCluster(ck)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetFrequency(0.5e9)
	restored.Run(10000)
	m := restored.Measure(20000)
	if m.UIPC() <= 0 {
		t.Fatal("restored cluster should simulate after a DVFS change")
	}
	// A warmed restore must beat a cold cluster at the same point.
	cold, err := NewCluster(cfg, workload.WebSearch(), 0.5e9)
	if err != nil {
		t.Fatal(err)
	}
	coldM := cold.Measure(20000)
	if m.PerCore[0].L1D.HitRate() <= coldM.PerCore[0].L1D.HitRate() {
		t.Fatalf("restored caches should be warm: %.3f vs cold %.3f",
			m.PerCore[0].L1D.HitRate(), coldM.PerCore[0].L1D.HitRate())
	}
}

func TestCheckpointUnknownWorkloadRejected(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	ck := cl.Checkpoint()
	ck.Profiles[0] = "no-such-workload"
	if _, err := RestoreCluster(ck); err == nil {
		t.Fatal("unknown workload name should be rejected")
	}
}

func TestCheckpointShapeMismatchRejected(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := NewCluster(cfg, workload.WebSearch(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	ck := cl.Checkpoint()
	ck.Config.CoresPerCluster = 2 // shape no longer matches saved cores
	ck.Profiles = ck.Profiles[:2]
	if _, err := RestoreCluster(ck); err == nil {
		t.Fatal("core-count mismatch should be rejected")
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}
