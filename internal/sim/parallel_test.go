package sim

import (
	"testing"

	"ntcsim/internal/rng"
	"ntcsim/internal/workload"
)

// warmedPair builds two identically warmed clusters.
func warmedPair(t *testing.T) (*Cluster, *Cluster) {
	t.Helper()
	mk := func() *Cluster {
		cl, err := NewCluster(DefaultConfig(), workload.WebSearch(), 2e9)
		if err != nil {
			t.Fatal(err)
		}
		cl.FastForward(200_000)
		cl.Run(5_000)
		return cl
	}
	return mk(), mk()
}

func TestReseedDeterministic(t *testing.T) {
	a, b := warmedPair(t)
	seed := rng.New(0xfeed)
	a.Reseed(seed.Split(3))
	b.Reseed(seed.Split(3))
	ma, mb := a.Measure(20_000), b.Measure(20_000)
	if ma.UserInstructions != mb.UserInstructions || ma.Instructions != mb.Instructions {
		t.Fatalf("same substream must replay identically: %+v vs %+v", ma.UIPC(), mb.UIPC())
	}
	if ma.LLC != mb.LLC {
		t.Fatal("LLC stats diverged under identical substreams")
	}
}

func TestReseedDecorrelatesSubstreams(t *testing.T) {
	a, b := warmedPair(t)
	seed := rng.New(0xfeed)
	a.Reseed(seed.Split(0))
	b.Reseed(seed.Split(1))
	ma, mb := a.Measure(20_000), b.Measure(20_000)
	// Different substreams must give different traces (while staying
	// statistically close — not asserted here).
	if ma.Instructions == mb.Instructions && ma.LLC == mb.LLC {
		t.Fatal("distinct substreams produced identical execution")
	}
}

func TestReseedPreservesMicroarchState(t *testing.T) {
	// Reseed swaps RNG streams only: the warmed caches and predictors must
	// survive, so post-reseed IPC stays near the warmed level (a cold
	// cluster is measurably slower over a short window).
	warm, _ := warmedPair(t)
	warm.Reseed(rng.New(1).Split(0))
	warmUIPC := warm.Measure(30_000).UIPC()

	cold, err := NewCluster(DefaultConfig(), workload.WebSearch(), 2e9)
	if err != nil {
		t.Fatal(err)
	}
	cold.Reseed(rng.New(1).Split(0))
	coldUIPC := cold.Measure(30_000).UIPC()
	if warmUIPC <= coldUIPC {
		t.Fatalf("warmed cluster (%.3f UIPC) should beat cold start (%.3f) — did Reseed drop state?",
			warmUIPC, coldUIPC)
	}
}

func TestChipFastForwardIndependentOfJobs(t *testing.T) {
	run := func(jobs int) []Measurement {
		ch, err := NewChip(DefaultConfig(), workload.MediaStreaming(), 3, 2e9)
		if err != nil {
			t.Fatal(err)
		}
		ch.SetJobs(jobs)
		ch.FastForward(150_000)
		ch.Run(5_000)
		ms, _ := ch.Measure(20_000)
		return ms
	}
	ref := run(1)
	for _, jobs := range []int{2, 8} {
		got := run(jobs)
		if len(got) != len(ref) {
			t.Fatalf("jobs=%d: %d clusters, want %d", jobs, len(got), len(ref))
		}
		for i := range ref {
			if got[i].UserInstructions != ref[i].UserInstructions ||
				got[i].Instructions != ref[i].Instructions ||
				got[i].LLC != ref[i].LLC {
				t.Fatalf("jobs=%d: cluster %d diverged from serial warmup", jobs, i)
			}
		}
	}
}

func TestRestoreClusterSharedCheckpointConcurrently(t *testing.T) {
	// One checkpoint restored from many goroutines must produce clusters
	// that evolve identically — the restore path may only read the
	// checkpoint (this is the invariant the parallel sweep engine relies
	// on; run under -race to enforce the read-only contract).
	cl, err := NewCluster(DefaultConfig(), workload.DataServing(), 2e9)
	if err != nil {
		t.Fatal(err)
	}
	cl.FastForward(150_000)
	ck := cl.Checkpoint()

	const n = 4
	type result struct {
		m   Measurement
		err error
	}
	results := make([]result, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			rcl, err := RestoreCluster(ck)
			if err != nil {
				results[i].err = err
				return
			}
			rcl.SetFrequency(1e9)
			rcl.Run(2_000)
			results[i].m = rcl.Measure(10_000)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 1; i < n; i++ {
		if results[i].err != nil {
			t.Fatal(results[i].err)
		}
		if results[i].m.UserInstructions != results[0].m.UserInstructions ||
			results[i].m.LLC != results[0].m.LLC {
			t.Fatalf("restore %d diverged from restore 0", i)
		}
	}
	if results[0].err != nil {
		t.Fatal(results[0].err)
	}
}
