package sram

import (
	"testing"
	"testing/quick"
	"time"
)

func slice1MB() Config {
	cfg := DefaultLLCConfig()
	cfg.CapacityBytes = 1 << 20
	cfg.Banks = 1
	return cfg
}

func TestOneMBSliceAround500mW(t *testing.T) {
	// Paper Sec. II-C2: "A 1MB slice of the LLC dissipates power in the
	// order of 500mW, mostly due to leakage."
	m := MustNew(slice1MB())
	// Typical load: 50M reads/s + 20M writes/s.
	p := m.Power(50e6, 20e6)
	if p < 0.35 || p > 0.65 {
		t.Fatalf("1MB slice power = %.3fW, want ~0.5W", p)
	}
}

func TestLeakageDominates(t *testing.T) {
	m := MustNew(slice1MB())
	leak := m.LeakagePower()
	total := m.Power(50e6, 20e6)
	if leak/total < 0.75 {
		t.Fatalf("leakage fraction = %.2f, want mostly leakage (>0.75)", leak/total)
	}
}

func TestLeakageScalesWithCapacity(t *testing.T) {
	small := MustNew(slice1MB())
	cfg := slice1MB()
	cfg.CapacityBytes = 4 << 20
	large := MustNew(cfg)
	ratio := large.LeakagePower() / small.LeakagePower()
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("4x capacity should give 4x leakage, got %.3fx", ratio)
	}
}

func TestClusterLLCPower(t *testing.T) {
	// The paper's 4MB cluster LLC should land near 4x500mW = 2W.
	m := MustNew(DefaultLLCConfig())
	p := m.Power(100e6, 40e6)
	if p < 1.5 || p > 2.6 {
		t.Fatalf("4MB LLC power = %.3fW, want ~2W", p)
	}
}

func TestWriteCostsMoreThanRead(t *testing.T) {
	m := MustNew(DefaultLLCConfig())
	if m.WriteEnergy() <= m.ReadEnergy() {
		t.Fatal("write energy should exceed read energy")
	}
}

func TestAccessEnergyGrowsWithAssociativity(t *testing.T) {
	lo := slice1MB()
	lo.Associativity = 4
	hi := slice1MB()
	hi.Associativity = 16
	if MustNew(hi).ReadEnergy() <= MustNew(lo).ReadEnergy() {
		t.Fatal("more ways probed should cost more energy")
	}
}

func TestLatencyGrowsWithCapacity(t *testing.T) {
	small := MustNew(slice1MB())
	cfg := slice1MB()
	cfg.CapacityBytes = 16 << 20
	large := MustNew(cfg)
	if large.AccessLatency() <= small.AccessLatency() {
		t.Fatal("larger array should be slower")
	}
}

func TestBankingReducesLatency(t *testing.T) {
	mono := slice1MB()
	mono.CapacityBytes = 4 << 20
	banked := mono
	banked.Banks = 4
	if MustNew(banked).AccessLatency() >= MustNew(mono).AccessLatency() {
		t.Fatal("banking should reduce per-access latency")
	}
}

func TestDefaultLLCLatencyPlausible(t *testing.T) {
	m := MustNew(DefaultLLCConfig())
	lat := m.AccessLatency()
	if lat < 2*time.Nanosecond || lat > 15*time.Nanosecond {
		t.Fatalf("4MB LLC latency = %v, want single-digit ns", lat)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{CapacityBytes: 0, Associativity: 8, LineBytes: 64, Banks: 1},
		{CapacityBytes: 1 << 20, Associativity: 0, LineBytes: 64, Banks: 1},
		{CapacityBytes: 1 << 20, Associativity: 8, LineBytes: 0, Banks: 1},
		{CapacityBytes: 1 << 20, Associativity: 8, LineBytes: 64, Banks: 0},
		{CapacityBytes: 1000, Associativity: 8, LineBytes: 64, Banks: 1}, // line doesn't divide
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on invalid config should panic")
		}
	}()
	MustNew(Config{})
}

func TestQuickPowerMonotoneInRate(t *testing.T) {
	m := MustNew(DefaultLLCConfig())
	err := quick.Check(func(a, b uint32) bool {
		r1, r2 := float64(a), float64(b)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return m.Power(r1, 0) <= m.Power(r2, 0)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnergiesPositive(t *testing.T) {
	err := quick.Check(func(capMB, ways uint8) bool {
		cfg := DefaultLLCConfig()
		cfg.CapacityBytes = (1 + int(capMB%16)) << 20
		cfg.Associativity = 1 + int(ways%32)
		m, err := New(cfg)
		if err != nil {
			return false
		}
		return m.ReadEnergy() > 0 && m.WriteEnergy() > 0 && m.LeakagePower() > 0 &&
			m.AccessLatency() > 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
