// Package sram provides an analytical, CACTI-style model of the SRAM
// last-level-cache slices used by the paper's clusters (Sec. II-C2).
//
// The paper uses CACTI(-P) to estimate LLC energy "and to account for
// cutting-edge leakage reduction techniques", reporting that a 1MB slice
// dissipates power "in the order of 500mW, mostly due to leakage". This
// package reproduces that with a first-order array model:
//
//   - leakage: per-cell subthreshold leakage (already including the
//     CACTI-P-style gated-ground reduction) times the cell count, plus a
//     fixed periphery fraction;
//   - dynamic: wordline + bitline + sense-amp + tag-match energy per
//     access, proportional to the line width and the number of ways probed;
//   - latency: a logarithmic decoder term plus a wire term that grows with
//     the square root of capacity (uniform-cache approximation of the
//     CACTI/NUCA latency models).
//
// The LLC sits on the fixed uncore voltage/clock domain, so all figures are
// independent of the core DVFS point (paper Sec. II-C2).
package sram

import (
	"fmt"
	"math"
	"time"
)

// Config describes one SRAM array (an LLC slice or bank group).
type Config struct {
	CapacityBytes int // data capacity
	Associativity int // ways
	LineBytes     int // cache line size
	Banks         int // independently accessible banks

	// CellLeakW is the average leakage per bit cell in watts, after leakage
	// reduction techniques (CACTI-P). Calibrated so a 1MB slice lands at
	// ~500mW, leakage-dominated.
	CellLeakW float64
	// PeripheryLeakFrac adds decoder/sense/periphery leakage as a fraction
	// of cell leakage.
	PeripheryLeakFrac float64
	// BitReadEnergyJ / BitWriteEnergyJ are the per-bit dynamic energies of
	// a data-array access.
	BitReadEnergyJ  float64
	BitWriteEnergyJ float64
	// TagEnergyPerWayJ is the energy to probe one tag way.
	TagEnergyPerWayJ float64
}

// DefaultLLCConfig returns the paper's per-cluster LLC: 4MB, 16-way, 4
// banks, 64B lines.
func DefaultLLCConfig() Config {
	return Config{
		CapacityBytes:     4 << 20,
		Associativity:     16,
		LineBytes:         64,
		Banks:             4,
		CellLeakW:         48e-9, // 48 nW/bit -> ~403mW/MB cell leakage
		PeripheryLeakFrac: 0.10,
		BitReadEnergyJ:    0.9e-12,
		BitWriteEnergyJ:   1.1e-12,
		TagEnergyPerWayJ:  6e-12,
	}
}

// Model is an instantiated SRAM array model.
type Model struct {
	cfg Config
}

// New validates cfg and returns the model.
func New(cfg Config) (*Model, error) {
	switch {
	case cfg.CapacityBytes <= 0:
		return nil, fmt.Errorf("sram: capacity must be positive, got %d", cfg.CapacityBytes)
	case cfg.LineBytes <= 0 || cfg.CapacityBytes%cfg.LineBytes != 0:
		return nil, fmt.Errorf("sram: line size %d must divide capacity %d", cfg.LineBytes, cfg.CapacityBytes)
	case cfg.Associativity <= 0:
		return nil, fmt.Errorf("sram: associativity must be positive, got %d", cfg.Associativity)
	case cfg.Banks <= 0:
		return nil, fmt.Errorf("sram: banks must be positive, got %d", cfg.Banks)
	}
	return &Model{cfg: cfg}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic("sram: MustNew: " + err.Error())
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// bits returns the number of data bits, including a ~7% tag/ECC overhead.
func (m *Model) bits() float64 {
	return float64(m.cfg.CapacityBytes) * 8 * 1.07
}

// LeakagePower returns the static power of the array in watts.
func (m *Model) LeakagePower() float64 {
	cell := m.bits() * m.cfg.CellLeakW
	return cell * (1 + m.cfg.PeripheryLeakFrac)
}

// ReadEnergy returns the energy of one read access (tag probe of all ways +
// one line read) in joules.
func (m *Model) ReadEnergy() float64 {
	lineBits := float64(m.cfg.LineBytes) * 8
	return float64(m.cfg.Associativity)*m.cfg.TagEnergyPerWayJ + lineBits*m.cfg.BitReadEnergyJ
}

// WriteEnergy returns the energy of one write access in joules.
func (m *Model) WriteEnergy() float64 {
	lineBits := float64(m.cfg.LineBytes) * 8
	return float64(m.cfg.Associativity)*m.cfg.TagEnergyPerWayJ + lineBits*m.cfg.BitWriteEnergyJ
}

// AccessLatency returns the array access latency. The decoder contributes a
// logarithmic term and the global wires a sqrt(capacity) term — the
// standard uniform-access approximation (CACTI 6.0-style). A 4MB array
// lands near 5ns, matching an ~10-cycle LLC at a 2GHz uncore clock.
func (m *Model) AccessLatency() time.Duration {
	perBank := float64(m.cfg.CapacityBytes) / float64(m.cfg.Banks)
	decode := 0.15 * math.Log2(perBank) // ns
	wire := 0.045 * math.Sqrt(perBank/1024)
	return time.Duration((decode + wire) * float64(time.Nanosecond))
}

// Power returns total array power in watts given read and write access
// rates in accesses per second.
func (m *Model) Power(readsPerSec, writesPerSec float64) float64 {
	return m.LeakagePower() + readsPerSec*m.ReadEnergy() + writesPerSec*m.WriteEnergy()
}
